// Command oodbserver runs a live page-server OODBMS over TCP.
//
// Usage:
//
//	oodbserver -dir /var/lib/oodb -addr :7090 -proto PS-AA -pages 1250
//
// Flags:
//
//	-dir               database directory (created on first start; recovered
//	                   from the write-ahead log on every start)
//	-addr              TCP listen address
//	-proto             cache-consistency protocol: PS | OS | PS-OO | PS-OA | PS-AA
//	-pages, -objs,     database geometry, honored at creation only; an
//	-pagesize          existing database keeps its on-disk geometry
//	-nosync            do not fsync the WAL per commit (faster, unsafe:
//	                   acknowledged commits may be lost on a crash)
//	-transport         connection transport: goroutine (default; one
//	                   serve+writer goroutine pair per session) or
//	                   reactor (epoll event loops, O(loops) goroutines
//	                   for any session count; Linux only, falls back to
//	                   goroutine elsewhere); honors OODB_TRANSPORT
//	-reactor-loops     reactor event loops (0 = min(8, GOMAXPROCS),
//	                   honoring OODB_REACTOR_LOOPS)
//	-reactor-drain-cap depose a session whose pending outbound bytes
//	                   exceed this cap — a reader too slow to drain its
//	                   socket (0 = default 8 MiB)
//	-shards            engine shards by page hash (power of two, max 64;
//	                   0 = min(8, GOMAXPROCS), honoring OODB_SHARDS;
//	                   1 = the unsharded engine)
//	-recovery-jobs     parallel WAL replay workers during startup recovery
//	                   (0 = min(shards, GOMAXPROCS), honoring
//	                   OODB_RECOVERY_JOBS; 1 = serial replay)
//	-group-commit-window
//	                   linger before each WAL fsync so concurrent commits
//	                   share it (0 = sync immediately)
//	-callback-timeout  depose clients that leave a cache-consistency
//	                   callback unanswered for this long (0 disables);
//	                   bounds how long one silent client can stall writers
//	-admin             serve the observability endpoint on this address
//	                   (/metrics, /statusz, /trace, /heatz, /spanz,
//	                   /debug/pprof/*)
//	-trace             start with protocol event tracing enabled (the
//	                   admin endpoint can toggle it at runtime)
//	-trace-size        trace ring capacity in events (0 = default,
//	                   honoring OODB_TRACE_SIZE)
//	-heat              start with heat/contention collection enabled
//	                   (honoring OODB_HEAT; /heatz can toggle at runtime)
//	-heat-epoch        heat sketch decay interval
//	-blackbox-dir      write crash blackboxes (trace ring + heat snapshot
//	                   + spans + metrics as JSONL) into this directory on
//	                   panic or fail-stop (empty = disabled)
//	-blackbox-max      retain at most this many blackbox dumps
//	-stats-every       print a one-line stats summary at this interval
//	                   (0 = off)
//
// Clients connect with repro.Dial (or cmd/oodbbench).
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops accepting,
// detaches clients, flushes the store, and truncates the WAL, then prints
// protocol statistics. A second signal forces immediate exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
)

func main() {
	dir := flag.String("dir", "oodb-data", "database directory")
	addr := flag.String("addr", "127.0.0.1:7090", "TCP listen address")
	proto := flag.String("proto", "PS-AA", "PS | OS | PS-OO | PS-OA | PS-AA")
	pages := flag.Int("pages", 1250, "database size in pages (creation only)")
	objsPerPage := flag.Int("objs", 20, "objects per page (creation only)")
	pageSize := flag.Int("pagesize", 4096, "page size in bytes (creation only)")
	noSync := flag.Bool("nosync", false, "do not fsync the WAL per commit (unsafe)")
	transport := flag.String("transport", "",
		"connection transport: goroutine | reactor "+
			"(empty = goroutine, honoring OODB_TRANSPORT)")
	reactorLoops := flag.Int("reactor-loops", 0,
		"reactor event loops (0 = min(8, GOMAXPROCS), honoring OODB_REACTOR_LOOPS)")
	reactorDrainCap := flag.Int("reactor-drain-cap", 0,
		"depose sessions whose pending outbound bytes exceed this (0 = 8 MiB)")
	shards := flag.Int("shards", 0,
		"engine shards by page hash (rounded down to a power of two; "+
			"0 = min(8, GOMAXPROCS), honoring OODB_SHARDS; 1 = unsharded)")
	recoveryJobs := flag.Int("recovery-jobs", 0,
		"parallel WAL replay workers during startup recovery "+
			"(0 = min(shards, GOMAXPROCS), honoring OODB_RECOVERY_JOBS; 1 = serial)")
	gcWindow := flag.Duration("group-commit-window", 0,
		"linger this long before each WAL fsync so concurrent commits share it "+
			"(0 = sync immediately; batching still happens under load)")
	cbTimeout := flag.Duration("callback-timeout", 0,
		"depose clients with callbacks unanswered this long (0 = wait forever)")
	admin := flag.String("admin", "",
		"observability HTTP address, e.g. :6060 (empty = disabled)")
	trace := flag.Bool("trace", false, "start with protocol event tracing enabled")
	traceSize := flag.Int("trace-size", 0,
		"trace ring capacity in events (0 = default, honoring OODB_TRACE_SIZE)")
	recluster := flag.Bool("recluster", false,
		"enable online reclustering (or OODB_RECLUSTER=1): reserve spare pages at "+
			"creation and migrate objects off false-sharing suspect pages in the "+
			"background (implies -heat; see /reclusterz)")
	reclusterEvery := flag.Duration("recluster-every", 0,
		"reclustering round period (0 = the 2s default)")
	heat := flag.Bool("heat", false,
		"start with heat/contention collection enabled (honoring OODB_HEAT)")
	heatEpoch := flag.Duration("heat-epoch", 0,
		"heat sketch decay interval (0 = default 10s)")
	blackboxDir := flag.String("blackbox-dir", "",
		"write crash blackboxes into this directory on panic or fail-stop (empty = disabled)")
	blackboxMax := flag.Int("blackbox-max", 0,
		fmt.Sprintf("retain at most this many blackbox dumps (0 = %d)", obs.DefaultBlackboxMax))
	statsEvery := flag.Duration("stats-every", 0,
		"print a one-line stats summary at this interval (0 = off)")
	flag.Parse()

	p, ok := core.ParseProtocol(*proto)
	if !ok {
		fatal(fmt.Errorf("unknown protocol %q", *proto))
	}
	srv, err := live.OpenServer(*dir, live.ServerOptions{
		Proto: p, PageSize: *pageSize, ObjsPerPage: *objsPerPage, NumPages: *pages,
		SyncWAL: !*noSync, GroupCommitWindow: *gcWindow, CallbackTimeout: *cbTimeout,
		Shards: *shards, RecoveryJobs: *recoveryJobs,
		Transport: *transport, ReactorLoops: *reactorLoops, ReactorDrainCap: *reactorDrainCap,
		TraceBuf: *traceSize, Heat: *heat, HeatEpoch: *heatEpoch,
		Recluster: *recluster, ReclusterEvery: *reclusterEvery,
		BlackboxDir: *blackboxDir, BlackboxMax: *blackboxMax,
	})
	if err != nil {
		fatal(err)
	}
	np, opp, osz := srv.Geometry()
	fmt.Printf("oodbserver: %s on %s — %d pages x %d objects (%d B each), %d engine shards, %s transport (GOMAXPROCS=%d, NumCPU=%d)\n",
		p, *addr, np, opp, osz, srv.NumShards(), srv.Transport(), runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Printf("oodbserver: telemetry — trace ring %d events, heat=%v", srv.TraceBufSize(), srv.Heat().Enabled())
	if *blackboxDir != "" {
		max := *blackboxMax
		if max <= 0 {
			max = obs.DefaultBlackboxMax
		}
		fmt.Printf(", blackbox %s (max %d dumps)", *blackboxDir, max)
	}
	fmt.Println()
	rs := srv.RecoveryStats()
	fmt.Printf("oodbserver: recovery replayed %d records (%d skipped under checkpoint watermark) across %d pages (%d skipped) with %d jobs in %.1fms\n",
		rs.Records, rs.RecordsSkipped, rs.PagesReplayed, rs.PagesSkipped, rs.Jobs,
		float64(rs.DurationNs)/1e6)

	srv.Tracer().SetEnabled(*trace)
	if *admin != "" {
		as, err := live.ServeAdmin(srv, *admin)
		if err != nil {
			fatal(err)
		}
		defer as.Close()
		fmt.Printf("oodbserver: admin endpoint on http://%s (/metrics /statusz /trace /heatz /spanz /debug/pprof)\n", as.Addr())
	}
	if *statsEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				st := srv.Stats()
				fmt.Printf("stats: sessions=%d reads=%d writes=%d commits=%d aborts=%d blocks=%d callbacks=%d busy=%d deadlocks=%d\n",
					srv.Sessions(), st.ReadReqs, st.WriteReqs, st.Commits, st.Aborts,
					st.Blocks, st.Callbacks, st.BusyReplies, st.Deadlocks)
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\noodbserver: shutting down (signal again to force)")
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "oodbserver: forced exit")
			os.Exit(1)
		}()
		// Close stops the listener; ListenAndServe below returns nil and
		// main finishes the orderly path (stats, exit 0).
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "oodbserver: shutdown:", err)
		}
	}()

	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	// Graceful path: listener closed by the signal handler, all sessions
	// drained, store flushed, WAL truncated. Report and leave.
	st := srv.Stats()
	fmt.Printf("stats: reads=%d writes=%d commits=%d aborts=%d callbacks=%d deadlocks=%d\n",
		st.ReadReqs, st.WriteReqs, st.Commits, st.Aborts, st.Callbacks, st.Deadlocks)
	// Close is idempotent; this is a no-op when the handler already ran it,
	// but covers future return paths out of ListenAndServe.
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oodbserver:", err)
	os.Exit(1)
}
