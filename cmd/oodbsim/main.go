// Command oodbsim runs a single OODBMS simulation with fully
// parameterized workload and system settings and prints the result, with
// an optional comparison across all five protocols.
//
// Examples:
//
//	oodbsim -workload HOTCOLD -proto PS-AA -writeprob 0.1
//	oodbsim -workload UNIFORM -locality high -writeprob 0.2 -compare
//	oodbsim -workload PRIVATE -writeprob 0.3 -clients 20 -measure 300
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "HOTCOLD", "HOTCOLD | UNIFORM | HICON | PRIVATE | INTERLEAVED-PRIVATE")
	proto := flag.String("proto", "PS-AA", "PS | OS | PS-OO | PS-OA | PS-AA")
	locality := flag.String("locality", "low", "low (30 pages, 1-7 obj) | high (10 pages, 8-16 obj)")
	writeProb := flag.Float64("writeprob", 0.1, "per-object write probability")
	clients := flag.Int("clients", workload.DefaultNumClients, "number of client workstations")
	seed := flag.Int64("seed", 1, "simulation seed")
	warmup := flag.Float64("warmup", 30, "warmup virtual seconds")
	measure := flag.Float64("measure", 120, "measured virtual seconds")
	netMbps := flag.Float64("net", 80, "network bandwidth in Mbps")
	scale := flag.Int("scale", 1, "database scale factor (txn size scales by sqrt-ish rule: x3 at x9)")
	compare := flag.Bool("compare", false, "run all five protocols and print a comparison")
	jobs := flag.Int("jobs", 0, "concurrent simulations in -compare mode (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print detailed metrics")
	flag.Parse()

	loc := workload.LowLocality
	if *locality == "high" {
		loc = workload.HighLocality
	}
	var spec workload.Spec
	switch *wl {
	case "HOTCOLD":
		spec = workload.HotColdSpec(loc, *writeProb)
	case "UNIFORM":
		spec = workload.UniformSpec(loc, *writeProb)
	case "HICON":
		spec = workload.HiConSpec(loc, *writeProb)
	case "PRIVATE":
		spec = workload.PrivateSpec(loc, *writeProb)
	case "INTERLEAVED-PRIVATE":
		spec = workload.InterleavedPrivateSpec(*writeProb)
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}
	spec.NumClients = *clients
	if *scale == 9 {
		spec = workload.Scale(spec, 9, 3)
	} else if *scale != 1 {
		spec = workload.Scale(spec, *scale, 1)
	}

	protos := core.Protocols
	if !*compare {
		p, ok := core.ParseProtocol(*proto)
		if !ok {
			fatal(fmt.Errorf("unknown protocol %q", *proto))
		}
		protos = []core.Protocol{p}
	}

	fmt.Printf("workload=%s locality=%s writeProb=%.3f clients=%d db=%d pages seed=%d\n\n",
		spec.Kind, loc, *writeProb, spec.NumClients, spec.DBPages, *seed)
	fmt.Printf("%-6s %10s %8s %9s %8s %8s %9s %8s %8s %8s\n",
		"proto", "tput(t/s)", "±90%CI", "resp(ms)", "commits", "aborts", "msgs/c", "srvCPU", "disk", "net")

	// Each protocol's run is an independent deterministic simulation;
	// fan them out and print in protocol order.
	nJobs := *jobs
	if nJobs <= 0 {
		nJobs = runtime.GOMAXPROCS(0)
	}
	results := make([]*model.Results, len(protos))
	sem := make(chan struct{}, nJobs)
	var wg sync.WaitGroup
	for i, p := range protos {
		cfg := model.DefaultConfig(p, spec)
		cfg.Seed = *seed
		cfg.Warmup = *warmup
		cfg.Measure = *measure
		cfg.NetworkMbps = *netMbps
		wg.Add(1)
		go func(i int, cfg model.Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = model.Run(cfg)
		}(i, cfg)
	}
	wg.Wait()

	for i, p := range protos {
		res := results[i]
		fmt.Printf("%-6s %10.2f %8.2f %9.1f %8d %8d %9.1f %8.2f %8.2f %8.2f\n",
			p, res.Throughput, res.ThroughputCI, res.RespTime.Mean()*1000,
			res.Commits, res.Aborts, res.MsgsPerCommit,
			res.ServerCPUUtil, res.DiskUtil, res.NetUtil)
		if *verbose {
			fmt.Printf("       deadlocks=%d callbacks=%d busy=%d deesc=%d pageGrants=%d objGrants=%d blocks=%d\n",
				res.Deadlocks, res.Callbacks, res.BusyReplies, res.Deescalations,
				res.PageGrants, res.ObjGrants, res.Blocks)
			fmt.Printf("       bufHits=%d bufMisses=%d writebacks=%d clientEvictions=%d bytes=%d\n",
				res.ServerBufHits, res.ServerBufMisses, res.ServerWritebacks,
				res.ClientEvictions, res.MsgBytes)
			for _, k := range []core.MsgKind{core.MReadReq, core.MWriteReq, core.MCommitReq,
				core.MCallback, core.MCallbackAck, core.MPageData, core.MObjData, core.MGrant,
				core.MDeescReq, core.MDeescReply} {
				if n := res.MsgByKind[k]; n > 0 {
					fmt.Printf("       msg %-12s %d\n", k, n)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oodbsim:", err)
	os.Exit(1)
}
