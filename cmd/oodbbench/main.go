// Command oodbbench drives a live server (local in-process by default, or
// a remote TCP server with -addr) with a configurable multi-client
// workload and reports end-to-end transaction throughput — the live-system
// analogue of the simulation study.
//
// Examples:
//
//	oodbbench -proto PS-AA -clients 8 -txns 500 -hot            # in-process
//	oodbbench -proto PS-AA -clients 8 -txns 500 -hot -heat      # + heat summary
//	oodbbench -addr 127.0.0.1:7090 -clients 8 -txns 500         # remote
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/benchjson"
	"repro/internal/core"
)

func main() {
	addr := flag.String("addr", "", "TCP server address (empty: run in-process)")
	proto := flag.String("proto", "PS-AA", "protocol for the in-process server")
	clients := flag.Int("clients", 4, "concurrent clients")
	txns := flag.Int("txns", 200, "transactions per client")
	reads := flag.Int("reads", 8, "object reads per transaction")
	writes := flag.Int("writes", 2, "object updates per transaction")
	pages := flag.Int("pages", 256, "database pages (in-process)")
	hot := flag.Bool("hot", false, "give each client a private hot region (HOTCOLD-like)")
	shards := flag.Int("shards", 0,
		"engine shards for the in-process server (0 = min(8, GOMAXPROCS), honoring OODB_SHARDS)")
	seed := flag.Int64("seed", 1, "workload seed")
	rto := flag.Duration("request-timeout", 0,
		"per-request deadline for remote clients (0 = wait forever)")
	reconnect := flag.Bool("reconnect", false,
		"redial remote servers with backoff after transport failures")
	heat := flag.Bool("heat", false,
		"collect heat telemetry on the in-process server and print the final "+
			"top-K hot/contended page summary")
	metricsEvery := flag.Duration("metrics-every", 0,
		"dump the metrics snapshot at this interval while running (0 = off)")
	benchOut := flag.String("benchjson", "",
		"append this run's throughput and p99 commit latency to the given benchjson file")
	note := flag.String("note", "", "label recorded with -benchjson (what changed)")
	flag.Parse()

	var connect func() (*repro.Client, error)
	var numPages, objsPerPage int
	var statsFn func() core.ServerStats
	var heatFn func() *repro.Heat

	// One registry aggregates the (in-process) server and every client, so
	// the final dump shows both sides of each protocol action.
	reg := repro.NewMetricsRegistry()

	if *addr == "" {
		p, ok := core.ParseProtocol(*proto)
		if !ok {
			fatal(fmt.Errorf("unknown protocol %q", *proto))
		}
		dir, err := os.MkdirTemp("", "oodbbench")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		cluster, err := repro.NewCluster(dir, repro.ClusterOptions{
			Proto: p, Clients: 0, NumPages: *pages, Shards: *shards, Metrics: reg,
			Heat: *heat,
		})
		if err != nil {
			fatal(err)
		}
		defer cluster.Close()
		connect = cluster.AttachClient
		statsFn = cluster.Server().Stats
		heatFn = cluster.Server().Heat
		numPages, objsPerPage, _ = cluster.Server().Geometry()
		fmt.Printf("oodbbench: in-process server with %d engine shards (GOMAXPROCS=%d, NumCPU=%d)\n",
			cluster.Server().NumShards(), runtime.GOMAXPROCS(0), runtime.NumCPU())
	} else {
		opts := repro.ClientOptions{RequestTimeout: *rto, Metrics: reg}
		if *reconnect {
			a := *addr
			opts.Redial = func() (repro.Conn, error) { return repro.DialConn(a) }
		}
		connect = func() (*repro.Client, error) { return repro.DialOpts(*addr, opts) }
		probe, err := connect()
		if err != nil {
			fatal(err)
		}
		numPages, objsPerPage = probe.Geometry()
		probe.Close()
	}

	fmt.Printf("oodbbench: %d clients x %d txns (%dr+%dw objects), db=%d pages\n",
		*clients, *txns, *reads, *writes, numPages)

	if *metricsEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*metricsEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				fmt.Println("--- metrics snapshot ---")
				reg.WriteHuman(os.Stdout)
			}
		}()
	}

	var committed, aborted int64
	commitLats := make([][]int64, *clients) // per-client: no shared append
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		cl, err := connect()
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *repro.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(i)*7919))
			pick := func() repro.ObjID {
				var p int
				if *hot && rng.Float64() < 0.8 {
					region := numPages / (*clients)
					p = i*region + rng.Intn(region)
				} else {
					p = rng.Intn(numPages)
				}
				return repro.Obj(repro.PageID(p), uint16(rng.Intn(objsPerPage)))
			}
			for n := 0; n < *txns; {
				tx, err := cl.Begin()
				if err != nil {
					fatal(err)
				}
				err = runTxn(tx, rng, pick, *reads, *writes)
				var commitStart time.Time
				if err == nil {
					commitStart = time.Now()
					err = tx.Commit()
				}
				switch {
				case err == nil:
					n++
					atomic.AddInt64(&committed, 1)
					commitLats[i] = append(commitLats[i], time.Since(commitStart).Nanoseconds())
				case errors.Is(err, repro.ErrAborted):
					atomic.AddInt64(&aborted, 1)
				default:
					fatal(err)
				}
			}
		}(i, cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	txnPerSec := float64(committed) / elapsed.Seconds()
	p99 := percentileNs(commitLats, 99)
	fmt.Printf("committed %d txns in %v — %.0f txn/s, p99 commit %v (%d deadlock retries)\n",
		committed, elapsed.Round(time.Millisecond), txnPerSec,
		time.Duration(p99).Round(time.Microsecond), aborted)
	if *benchOut != "" {
		run := benchjson.NewRun()
		run.Note = *note
		run.Benchmarks = map[string]benchjson.Benchmark{
			fmt.Sprintf("oodbbench/clients=%d", *clients): {
				NsPerOp:   meanNs(commitLats),
				OpsPerSec: txnPerSec,
				P99Ns:     float64(p99),
			},
		}
		if err := benchjson.Append(*benchOut, run); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded run in %s\n", *benchOut)
	}
	if statsFn != nil {
		st := statsFn()
		fmt.Printf("server: reads=%d writes=%d callbacks=%d busy=%d deesc=%d pageX=%d objX=%d deadlocks=%d\n",
			st.ReadReqs, st.WriteReqs, st.Callbacks, st.BusyReplies,
			st.Deescalations, st.PageGrants, st.ObjGrants, st.Deadlocks)
	}
	if *heat && heatFn != nil {
		fmt.Println("--- heat summary (top-K hot/contended pages) ---")
		heatFn().WriteHuman(os.Stdout)
	} else if *heat {
		fmt.Fprintln(os.Stderr, "oodbbench: -heat requires the in-process server (no -addr)")
	}
	fmt.Println("--- final metrics ---")
	reg.WriteHuman(os.Stdout)
}

func runTxn(tx *repro.Txn, rng *rand.Rand, pick func() repro.ObjID, reads, writes int) error {
	for r := 0; r < reads; r++ {
		if _, err := tx.Read(pick()); err != nil {
			return err
		}
	}
	for w := 0; w < writes; w++ {
		if err := tx.Update(pick(), func(old []byte) []byte {
			return []byte{old[0] + 1}
		}); err != nil {
			return err
		}
	}
	return nil
}

// percentileNs merges the per-client latency slices and returns the p-th
// percentile in nanoseconds (0 if nothing was recorded).
func percentileNs(lats [][]int64, p int) int64 {
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all[(len(all)-1)*p/100]
}

func meanNs(lats [][]int64) float64 {
	var sum, n int64
	for _, l := range lats {
		for _, v := range l {
			sum += v
		}
		n += int64(len(l))
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oodbbench:", err)
	os.Exit(1)
}
