// Command oodbbench drives a live server (local in-process by default, or
// a remote TCP server with -addr) with a configurable multi-client
// workload and reports end-to-end transaction throughput — the live-system
// analogue of the simulation study.
//
// Examples:
//
//	oodbbench -proto PS-AA -clients 8 -txns 500 -hot            # in-process
//	oodbbench -proto PS-AA -clients 8 -txns 500 -hot -heat      # + heat summary
//	oodbbench -addr 127.0.0.1:7090 -clients 8 -txns 500         # remote
//	oodbbench -transport reactor -clients 32 -txns 200          # loopback TCP, epoll reactor
//	oodbbench -proto PS -interleave -recluster -txns 4000       # false-sharing recovery
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/benchjson"
	"repro/internal/core"
)

func main() {
	addr := flag.String("addr", "", "TCP server address (empty: run in-process)")
	proto := flag.String("proto", "PS-AA", "protocol for the in-process server")
	clients := flag.Int("clients", 4, "concurrent clients")
	txns := flag.Int("txns", 200, "transactions per client")
	reads := flag.Int("reads", 8, "object reads per transaction")
	writes := flag.Int("writes", 2, "object updates per transaction")
	pages := flag.Int("pages", 256, "database pages (in-process)")
	hot := flag.Bool("hot", false, "give each client a private hot region (HOTCOLD-like)")
	shards := flag.Int("shards", 0,
		"engine shards for the in-process server (0 = min(8, GOMAXPROCS), honoring OODB_SHARDS)")
	transport := flag.String("transport", "",
		"serve the in-process benchmark over loopback TCP with this connection "+
			"transport (goroutine | reactor) instead of in-memory pipes; "+
			"ignored with -addr (the remote server chose its own)")
	seed := flag.Int64("seed", 1, "workload seed")
	rto := flag.Duration("request-timeout", 0,
		"per-request deadline for remote clients (0 = wait forever)")
	reconnect := flag.Bool("reconnect", false,
		"redial remote servers with backoff after transport failures")
	heat := flag.Bool("heat", false,
		"collect heat telemetry on the in-process server and print the final "+
			"top-K hot/contended page summary")
	metricsEvery := flag.Duration("metrics-every", 0,
		"dump the metrics snapshot at this interval while running (0 = off)")
	benchOut := flag.String("benchjson", "",
		"append this run's throughput and p99 commit latency to the given benchjson file")
	note := flag.String("note", "", "label recorded with -benchjson (what changed)")
	interleave := flag.Bool("interleave", false,
		"run the interleaved-PRIVATE false-sharing scenario instead of the random "+
			"workload: two writers share every page but never an object, measured in "+
			"two phases (in-process only; ignores -clients/-reads/-writes/-hot)")
	recluster := flag.Bool("recluster", false,
		"enable online reclustering on the in-process server; with -interleave, "+
			"migration rounds run between the two timed phases")
	flag.Parse()

	var connect func() (*repro.Client, error)
	var numPages, objsPerPage int
	var statsFn func() core.ServerStats
	var heatFn func() *repro.Heat

	// One registry aggregates the (in-process) server and every client, so
	// the final dump shows both sides of each protocol action.
	reg := repro.NewMetricsRegistry()

	if *addr == "" {
		p, ok := core.ParseProtocol(*proto)
		if !ok {
			fatal(fmt.Errorf("unknown protocol %q", *proto))
		}
		dir, err := os.MkdirTemp("", "oodbbench")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		if *interleave && *transport != "" {
			fatal(fmt.Errorf("-interleave is a deterministic in-memory scenario; drop -transport"))
		}
		copts := repro.ClusterOptions{
			Proto: p, Clients: 0, NumPages: *pages, Shards: *shards, Metrics: reg,
			Heat: *heat, Recluster: *recluster, Transport: *transport,
		}
		if *interleave && *recluster {
			// The scenario triggers its migration rounds explicitly between
			// the two phases; keep the background planner out of the timing.
			copts.ReclusterEvery = time.Hour
		}
		cluster, err := repro.NewCluster(dir, copts)
		if err != nil {
			fatal(err)
		}
		defer cluster.Close()
		if *interleave {
			runInterleaved(cluster, *txns, *recluster, *benchOut, *note)
			return
		}
		connect = cluster.AttachClient
		how := "in-memory pipes"
		if *transport != "" {
			// Serve a loopback listener with the requested transport and
			// dial the benchmark clients through it, so the wire layer
			// under test (reactor or goroutine-per-conn) is on the path.
			go cluster.Server().ListenAndServe("127.0.0.1:0")
			deadline := time.Now().Add(5 * time.Second)
			for cluster.Server().Addr() == "" {
				if time.Now().After(deadline) {
					fatal(fmt.Errorf("in-process server never started listening"))
				}
				time.Sleep(time.Millisecond)
			}
			tcpAddr := cluster.Server().Addr()
			copts2 := repro.ClientOptions{RequestTimeout: *rto, Metrics: reg}
			connect = func() (*repro.Client, error) { return repro.DialOpts(tcpAddr, copts2) }
			how = fmt.Sprintf("loopback TCP, %s transport", cluster.Server().Transport())
		}
		statsFn = cluster.Server().Stats
		heatFn = cluster.Server().Heat
		numPages, objsPerPage, _ = cluster.Server().Geometry()
		fmt.Printf("oodbbench: in-process server with %d engine shards over %s (GOMAXPROCS=%d, NumCPU=%d)\n",
			cluster.Server().NumShards(), how, runtime.GOMAXPROCS(0), runtime.NumCPU())
	} else {
		if *interleave {
			fatal(fmt.Errorf("-interleave needs the in-process server (drop -addr)"))
		}
		opts := repro.ClientOptions{RequestTimeout: *rto, Metrics: reg}
		if *reconnect {
			a := *addr
			opts.Redial = func() (repro.Conn, error) { return repro.DialConn(a) }
		}
		connect = func() (*repro.Client, error) { return repro.DialOpts(*addr, opts) }
		probe, err := connect()
		if err != nil {
			fatal(err)
		}
		numPages, objsPerPage = probe.Geometry()
		probe.Close()
	}

	fmt.Printf("oodbbench: %d clients x %d txns (%dr+%dw objects), db=%d pages\n",
		*clients, *txns, *reads, *writes, numPages)

	if *metricsEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*metricsEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				fmt.Println("--- metrics snapshot ---")
				reg.WriteHuman(os.Stdout)
			}
		}()
	}

	var committed, aborted int64
	commitLats := make([][]int64, *clients) // per-client: no shared append
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		cl, err := connect()
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *repro.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(i)*7919))
			pick := func() repro.ObjID {
				var p int
				if *hot && rng.Float64() < 0.8 {
					region := numPages / (*clients)
					p = i*region + rng.Intn(region)
				} else {
					p = rng.Intn(numPages)
				}
				return repro.Obj(repro.PageID(p), uint16(rng.Intn(objsPerPage)))
			}
			for n := 0; n < *txns; {
				tx, err := cl.Begin()
				if err != nil {
					fatal(err)
				}
				err = runTxn(tx, rng, pick, *reads, *writes)
				var commitStart time.Time
				if err == nil {
					commitStart = time.Now()
					err = tx.Commit()
				}
				switch {
				case err == nil:
					n++
					atomic.AddInt64(&committed, 1)
					commitLats[i] = append(commitLats[i], time.Since(commitStart).Nanoseconds())
				case errors.Is(err, repro.ErrAborted):
					atomic.AddInt64(&aborted, 1)
				default:
					fatal(err)
				}
			}
		}(i, cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	txnPerSec := float64(committed) / elapsed.Seconds()
	p99 := percentileNs(commitLats, 99)
	fmt.Printf("committed %d txns in %v — %.0f txn/s, p99 commit %v (%d deadlock retries)\n",
		committed, elapsed.Round(time.Millisecond), txnPerSec,
		time.Duration(p99).Round(time.Microsecond), aborted)
	if *benchOut != "" {
		run := benchjson.NewRun()
		run.Note = *note
		run.Benchmarks = map[string]benchjson.Benchmark{
			fmt.Sprintf("oodbbench/clients=%d", *clients): {
				NsPerOp:   meanNs(commitLats),
				OpsPerSec: txnPerSec,
				P99Ns:     float64(p99),
			},
		}
		if err := benchjson.Append(*benchOut, run); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded run in %s\n", *benchOut)
	}
	if statsFn != nil {
		st := statsFn()
		fmt.Printf("server: reads=%d writes=%d callbacks=%d busy=%d deesc=%d pageX=%d objX=%d deadlocks=%d\n",
			st.ReadReqs, st.WriteReqs, st.Callbacks, st.BusyReplies,
			st.Deescalations, st.PageGrants, st.ObjGrants, st.Deadlocks)
	}
	if *heat && heatFn != nil {
		fmt.Println("--- heat summary (top-K hot/contended pages) ---")
		heatFn().WriteHuman(os.Stdout)
	} else if *heat {
		fmt.Fprintln(os.Stderr, "oodbbench: -heat requires the in-process server (no -addr)")
	}
	fmt.Println("--- final metrics ---")
	reg.WriteHuman(os.Stdout)
}

func runTxn(tx *repro.Txn, rng *rand.Rand, pick func() repro.ObjID, reads, writes int) error {
	for r := 0; r < reads; r++ {
		if _, err := tx.Read(pick()); err != nil {
			return err
		}
	}
	for w := 0; w < writes; w++ {
		if err := tx.Update(pick(), func(old []byte) []byte {
			return []byte{old[0] + 1}
		}); err != nil {
			return err
		}
	}
	return nil
}

// runInterleaved measures the paper's worst case for page-grain protocols:
// two writers share every page but never an object (the INTERLEAVED-PRIVATE
// placement), so all conflicts are false sharing. A deterministic
// single-goroutine driver alternates the two clients — modeling clients on
// separate machines whose requests interleave at the server — because
// free-running goroutines on a small CPU count are scheduled in long bursts
// that let each client keep page ownership artificially long, hiding the
// ping-pong this scenario exists to measure.
//
// With -recluster, heat-driven migration rounds run between the two timed
// phases; the late/early ratio is then the throughput the reclusterer
// recovered (CI floors the same ratio via benchguard -min-recovery-ratio).
func runInterleaved(cluster *repro.Cluster, txns int, recluster bool, benchOut, note string) {
	const (
		sharedPages = 8
		nWriters    = 2
	)
	numPages, objsPerPage, _ := cluster.Server().Geometry()
	if numPages < sharedPages || objsPerPage < 2 {
		fatal(fmt.Errorf("-interleave needs >= %d pages and >= 2 objects/page", sharedPages))
	}
	half := objsPerPage / 2
	cls := make([]*repro.Client, nWriters)
	for i := range cls {
		cl, err := cluster.AttachClient()
		if err != nil {
			fatal(err)
		}
		cls[i] = cl
	}
	fmt.Printf("oodbbench: interleaved-PRIVATE — %d writers x %d txns over %d shared pages "+
		"(%d objects/page, recluster=%v)\n", nWriters, txns, sharedPages, objsPerPage, recluster)

	var lats []int64
	phase := func(n int, record bool) float64 {
		start := time.Now()
		for i := 0; i < n; i++ {
			w := i % nWriters
			k := i / nWriters
			// Writer w owns slot half `w` of every shared page; decorrelate
			// slot from page so each writer cycles all of its slots.
			obj := repro.Obj(repro.PageID(k%sharedPages), uint16(w*half+(k/sharedPages)%half))
			tx, err := cls[w].Begin()
			if err != nil {
				fatal(err)
			}
			err = tx.Update(obj, func(old []byte) []byte { return []byte{old[0] + 1} })
			var commitStart time.Time
			if err == nil {
				commitStart = time.Now()
				err = tx.Commit()
			}
			if errors.Is(err, repro.ErrAborted) {
				i-- // deadlock victim: retry the same transaction
				continue
			}
			if err != nil {
				fatal(err)
			}
			if record {
				lats = append(lats, time.Since(commitStart).Nanoseconds())
			}
		}
		return float64(n) / time.Since(start).Seconds()
	}

	phase(nWriters*sharedPages*half, false) // warm both caches
	lats = lats[:0]
	earlyTPS := phase(txns, true)
	p99Early := percentileNs([][]int64{lats}, 99)

	moved := 0
	if recluster {
		phase(8*sharedPages, false) // fresh writer evidence in the live heat epoch
		cluster.Server().Heat().Rotate()
		for {
			// Each round migrates at most the per-round budget; drain until
			// the planner finds nothing left to move.
			n, err := cluster.Server().ReclusterNow()
			if err != nil {
				fatal(err)
			}
			moved += n
			if n == 0 {
				break
			}
		}
		if moved == 0 {
			fatal(fmt.Errorf("-interleave -recluster: no objects migrated " +
				"(no false-sharing evidence accumulated?)"))
		}
		fmt.Printf("reclustered: %d objects migrated off the %d shared pages\n",
			moved, sharedPages)
		phase(8*sharedPages, false) // untimed: clients learn the redirect aliases
	}

	lats = lats[:0]
	lateTPS := phase(txns, true)
	p99Late := percentileNs([][]int64{lats}, 99)

	fmt.Printf("early %.0f txn/s (p99 commit %v) -> late %.0f txn/s (p99 commit %v): %.2fx\n",
		earlyTPS, time.Duration(p99Early).Round(time.Microsecond),
		lateTPS, time.Duration(p99Late).Round(time.Microsecond), lateTPS/earlyTPS)
	st := cluster.Server().Stats()
	fmt.Printf("server: reads=%d writes=%d callbacks=%d busy=%d pageX=%d objX=%d deadlocks=%d\n",
		st.ReadReqs, st.WriteReqs, st.Callbacks, st.BusyReplies,
		st.PageGrants, st.ObjGrants, st.Deadlocks)
	if recluster {
		rs := cluster.Server().ReclusterStatus(false)
		fmt.Printf("recluster: relocated=%d (user pages %d, spare pages %d)\n",
			rs.Relocated, rs.UserPages, rs.SparePages)
	}
	if benchOut != "" {
		run := benchjson.NewRun()
		run.Note = note
		run.Benchmarks = map[string]benchjson.Benchmark{
			"oodbbench/interleaved/phase=early": {OpsPerSec: earlyTPS, P99Ns: float64(p99Early)},
			"oodbbench/interleaved/phase=late":  {OpsPerSec: lateTPS, P99Ns: float64(p99Late)},
			"oodbbench/interleaved":             {EarlyOpsPerSec: earlyTPS, LateOpsPerSec: lateTPS},
		}
		if err := benchjson.Append(benchOut, run); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded run in %s\n", benchOut)
	}
}

// percentileNs merges the per-client latency slices and returns the p-th
// percentile in nanoseconds (0 if nothing was recorded).
func percentileNs(lats [][]int64, p int) int64 {
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all[(len(all)-1)*p/100]
}

func meanNs(lats [][]int64) float64 {
	var sum, n int64
	for _, l := range lats {
		for _, v := range l {
			sum += v
		}
		n += int64(len(l))
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oodbbench:", err)
	os.Exit(1)
}
