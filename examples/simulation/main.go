// simulation shows the study side of the library: build a workload,
// sweep the per-object write probability, and compare the five protocols'
// throughput — a miniature of the paper's Figure 3 that runs in seconds.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	writeProbs := []float64{0, 0.05, 0.15, 0.30}
	protos := []repro.Protocol{repro.PS, repro.OS, repro.PSOO, repro.PSOA, repro.PSAA}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "writeProb\t")
	for _, p := range protos {
		fmt.Fprintf(w, "%v\t", p)
	}
	fmt.Fprintln(w)

	for _, wp := range writeProbs {
		fmt.Fprintf(w, "%.2f\t", wp)
		for _, p := range protos {
			// The paper's HOTCOLD workload at low page locality, shrunk
			// for a fast demo (scale up Measure for tighter numbers).
			wl := repro.HotColdWorkload(repro.LowLocality, wp)
			cfg := repro.DefaultSimConfig(p, wl)
			cfg.Warmup, cfg.Measure, cfg.Batches = 5, 20, 4
			res := repro.Simulate(cfg)
			fmt.Fprintf(w, "%.1f\t", res.Throughput)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\nthroughput in committed txns/sec (HOTCOLD, low locality, 10 clients)")
	fmt.Println("compare with figures/fig3.txt for the full-length sweep")
}
