// Quickstart: open an in-process cluster, run transactions from two
// clients, and demonstrate fine-grained sharing — two clients updating
// different objects on the SAME page concurrently under PS-AA, which a
// classic page server would serialize.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "oodb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := repro.NewCluster(dir, repro.ClusterOptions{
		Proto:   repro.PSAA,
		Clients: 2,
		// A small database is plenty for a demo.
		NumPages: 64, ObjsPerPage: 8, PageSize: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	alice, bob := cluster.Client(0), cluster.Client(1)

	// Alice writes a greeting and commits.
	tx, err := alice.Begin()
	if err != nil {
		log.Fatal(err)
	}
	must(tx.Write(repro.Obj(3, 0), []byte("hello from alice")))
	must(tx.Commit())
	fmt.Println("alice committed object 3.0")

	// Bob reads it: the page ships to Bob's cache.
	btx, _ := bob.Begin()
	v, err := btx.Read(repro.Obj(3, 0))
	must(err)
	fmt.Printf("bob read object 3.0: %q\n", trim(v))

	// Fine-grained sharing: while Bob's transaction is still reading page
	// 3, Alice updates a DIFFERENT object on the same page. Under PS-AA
	// the server de-escalates to object-level locking, so Alice does not
	// block on Bob.
	atx, _ := alice.Begin()
	must(atx.Write(repro.Obj(3, 5), []byte("same page, no conflict")))
	must(atx.Commit())
	fmt.Println("alice committed object 3.5 while bob held page 3")

	// Bob keeps working and commits.
	v2, err := btx.Read(repro.Obj(3, 1))
	must(err)
	_ = v2
	must(btx.Commit())

	// A write-write conflict on the SAME object blocks (and may deadlock,
	// returning repro.ErrAborted — retry in that case).
	for {
		tx, _ := alice.Begin()
		err := tx.Update(repro.Obj(3, 5), func(old []byte) []byte {
			return append(trim(old), '!')
		})
		if err == nil {
			err = tx.Commit()
		}
		if err == nil {
			break
		}
		if !errors.Is(err, repro.ErrAborted) {
			log.Fatal(err)
		}
	}

	check, _ := bob.Begin()
	v3, _ := check.Read(repro.Obj(3, 5))
	check.Commit()
	fmt.Printf("final object 3.5: %q\n", trim(v3))

	st := cluster.Server().Stats()
	fmt.Printf("server stats: reads=%d writes=%d commits=%d callbacks=%d pageGrants=%d objGrants=%d deescalations=%d\n",
		st.ReadReqs, st.WriteReqs, st.Commits, st.Callbacks, st.PageGrants, st.ObjGrants, st.Deescalations)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// trim strips the zero padding of a fixed-size object slot.
func trim(b []byte) []byte {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return b[:end]
}
