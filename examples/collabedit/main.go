// collabedit demonstrates false sharing — the scenario the paper's hybrid
// protocols exist for. Two writers continuously update DIFFERENT objects
// that happen to live on the SAME page (think two users editing different
// paragraphs of one document). The demo runs the identical workload under
// the basic page server (PS) and the adaptive page server (PS-AA) and
// prints the servers' protocol statistics side by side:
//
//   - under PS every update needs the whole page's write lock, so the two
//     writers collide constantly (blocks, callbacks bouncing the page,
//     deadlock aborts);
//   - under PS-AA the server de-escalates to object locks on that page and
//     the writers proceed in parallel.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"text/tabwriter"

	"repro"
	"repro/internal/core"
)

const (
	editsPerWriter = 120
	sharedPage     = repro.PageID(7)
)

func main() {
	psStats, psAborts := run(repro.PS)
	aaStats, aaAborts := run(repro.PSAA)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "metric\tPS\tPS-AA\n")
	fmt.Fprintf(w, "write requests\t%d\t%d\n", psStats.WriteReqs, aaStats.WriteReqs)
	fmt.Fprintf(w, "callbacks\t%d\t%d\n", psStats.Callbacks, aaStats.Callbacks)
	fmt.Fprintf(w, "busy replies\t%d\t%d\n", psStats.BusyReplies, aaStats.BusyReplies)
	fmt.Fprintf(w, "blocks\t%d\t%d\n", psStats.Blocks, aaStats.Blocks)
	fmt.Fprintf(w, "deadlocks\t%d\t%d\n", psStats.Deadlocks, aaStats.Deadlocks)
	fmt.Fprintf(w, "client aborts\t%d\t%d\n", psAborts, aaAborts)
	fmt.Fprintf(w, "page grants\t%d\t%d\n", psStats.PageGrants, aaStats.PageGrants)
	fmt.Fprintf(w, "object grants\t%d\t%d\n", psStats.ObjGrants, aaStats.ObjGrants)
	w.Flush()
	fmt.Println("\nPS-AA de-escalates the contended page to object locks; PS bounces it.")
}

// run executes the two-writer false-sharing workload under one protocol
// and returns the server stats and total client-side abort retries.
func run(proto repro.Protocol) (core.ServerStats, int64) {
	dir, err := os.MkdirTemp("", "oodb-collab")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := repro.NewCluster(dir, repro.ClusterOptions{
		Proto: proto, Clients: 2, NumPages: 16, ObjsPerPage: 8, PageSize: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var aborts int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := cluster.Client(i)
			slot := uint16(i) // each writer owns a distinct object on the shared page
			myAborts := int64(0)
			for n := 0; n < editsPerWriter; {
				tx, err := cl.Begin()
				if err != nil {
					log.Fatal(err)
				}
				err = tx.Update(repro.Obj(sharedPage, slot), func(old []byte) []byte {
					return []byte{old[0] + 1}
				})
				// Keep the transaction open across scheduler yields so the
				// two writers genuinely overlap (the whole point of the
				// demo: concurrent transactions touching one page).
				for y := 0; y < 4 && err == nil; y++ {
					runtime.Gosched()
				}
				if err == nil {
					err = tx.Commit()
				}
				switch {
				case err == nil:
					n++
				case errors.Is(err, repro.ErrAborted):
					myAborts++
				default:
					log.Fatal(err)
				}
			}
			mu.Lock()
			aborts += myAborts
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	// Verify no update was lost.
	check := cluster.Client(0)
	tx, _ := check.Begin()
	for slot := uint16(0); slot < 2; slot++ {
		v, err := tx.Read(repro.Obj(sharedPage, slot))
		if err != nil {
			log.Fatal(err)
		}
		if int(v[0]) != editsPerWriter {
			log.Fatalf("%v: lost updates under %v: counter=%d want %d", repro.Obj(sharedPage, slot), proto, v[0], editsPerWriter)
		}
	}
	tx.Commit()
	fmt.Printf("%-6v: both counters reached %d (serializable)\n", proto, editsPerWriter)
	return cluster.Server().Stats(), aborts
}
