// cadcheckout models the paper's motivating CAD/CAM scenario (the PRIVATE
// workload of Section 5.5): each engineer works on a private partition of
// the design database while sharing a read-only component library. With
// intertransaction caching and adaptive page-level locking (PS-AA), steady
// state needs almost no server interaction: every engineer's partition
// stays cached and write locks come back page-granular.
//
// The program runs a fleet of engineer goroutines against one in-process
// server and reports per-engineer progress plus the server's protocol
// statistics — note the near-zero callback count (no data contention) and
// the dominance of page-level grants (adaptive locking at work).
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sync"

	"repro"
)

const (
	engineers      = 4
	partPages      = 16 // private partition size per engineer, in pages
	libraryPages   = 32 // shared read-only component library
	sessionsEach   = 30 // design sessions (transactions) per engineer
	editsPerSess   = 6  // object edits per session
	lookupsPerSess = 4  // library lookups per session
)

func main() {
	dir, err := os.MkdirTemp("", "oodb-cad")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	numPages := engineers*partPages + libraryPages
	cluster, err := repro.NewCluster(dir, repro.ClusterOptions{
		Proto:    repro.PSAA,
		Clients:  engineers,
		NumPages: numPages, ObjsPerPage: 16, PageSize: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Seed the shared component library (pages after the partitions).
	seed := cluster.Client(0)
	tx, _ := seed.Begin()
	for p := 0; p < libraryPages; p++ {
		page := repro.PageID(engineers*partPages + p)
		if err := tx.Write(repro.Obj(page, 0), []byte(fmt.Sprintf("component-%d", p))); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library seeded: %d components\n", libraryPages)

	var wg sync.WaitGroup
	for e := 0; e < engineers; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			engineer(cluster.Client(e), e)
		}(e)
	}
	wg.Wait()

	st := cluster.Server().Stats()
	fmt.Printf("\nserver stats after %d sessions x %d engineers:\n", sessionsEach, engineers)
	fmt.Printf("  read requests  %6d\n", st.ReadReqs)
	fmt.Printf("  write requests %6d\n", st.WriteReqs)
	fmt.Printf("  commits        %6d\n", st.Commits)
	fmt.Printf("  page grants    %6d   <- adaptive locking stays page-level\n", st.PageGrants)
	fmt.Printf("  object grants  %6d\n", st.ObjGrants)
	fmt.Printf("  callbacks      %6d   <- no data contention in PRIVATE work\n", st.Callbacks)
	fmt.Printf("  deadlocks      %6d\n", st.Deadlocks)
}

// engineer runs design sessions against its private partition.
func engineer(cl *repro.Client, e int) {
	base := repro.PageID(e * partPages)
	rng := uint32(2654435761 * uint32(e+1))
	next := func(n int) int {
		rng = rng*1664525 + 1013904223
		return int(rng>>8) % n
	}
	for s := 0; s < sessionsEach; s++ {
		for {
			tx, err := cl.Begin()
			if err != nil {
				log.Fatal(err)
			}
			err = session(tx, base, next)
			if err == nil {
				err = tx.Commit()
			}
			if err == nil {
				break
			}
			if !errors.Is(err, repro.ErrAborted) {
				log.Fatal(err)
			}
			// Deadlock victim (cannot happen in PRIVATE work, but the
			// retry loop is how real applications are written).
		}
	}
	fmt.Printf("engineer %d finished %d sessions\n", e, sessionsEach)
}

func session(tx *repro.Txn, base repro.PageID, next func(int) int) error {
	// Consult the shared library (read-only).
	for i := 0; i < lookupsPerSess; i++ {
		page := repro.PageID(engineers*partPages + next(libraryPages))
		if _, err := tx.Read(repro.Obj(page, 0)); err != nil {
			return err
		}
	}
	// Edit private design objects.
	for i := 0; i < editsPerSess; i++ {
		obj := repro.Obj(base+repro.PageID(next(partPages)), uint16(next(16)))
		if err := tx.Update(obj, func(old []byte) []byte {
			return []byte(fmt.Sprintf("rev+%d", len(old)%97))
		}); err != nil {
			return err
		}
	}
	return nil
}
