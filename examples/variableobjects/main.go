// variableobjects demonstrates the paper's Section 6.1 extension:
// size-changing updates. The server stores objects in slotted pages,
// compacts in place as they grow and shrink, and forwards objects that
// outgrow their home page to an overflow region — transparently to the
// application, which just writes values of whatever size it likes.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "oodb-variable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Variable-size objects require the OS protocol (objects ship by
	// value; page images stay server-internal).
	cluster, err := repro.NewCluster(dir, repro.ClusterOptions{
		Proto: repro.OS, Clients: 2,
		NumPages: 64, ObjsPerPage: 8, PageSize: 1024,
		VariableObjects: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	alice, bob := cluster.Client(0), cluster.Client(1)
	doc := repro.Obj(5, 0)
	fmt.Printf("max object size: %d bytes\n\n", alice.ObjSize())

	// A document that grows with every revision.
	revisions := []string{
		"v1",
		"v2: " + strings.Repeat("expanded content ", 8),
		"v3: " + strings.Repeat("a much longer body of text ", 20),
		"v4: back to a short abstract",
	}
	for i, text := range revisions {
		tx, err := alice.Begin()
		if err != nil {
			log.Fatal(err)
		}
		if err := tx.Write(doc, []byte(text)); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}

		// Bob reads the exact value back — no padding, no truncation.
		btx, _ := bob.Begin()
		got, err := btx.Read(doc)
		if err != nil {
			log.Fatal(err)
		}
		btx.Commit()
		fmt.Printf("revision %d: wrote %4d bytes, bob read %4d bytes (match=%v)\n",
			i+1, len(text), len(got), string(got) == text)
	}

	// Fill the neighbours too, so the page has to juggle space.
	tx, _ := alice.Begin()
	for slot := uint16(1); slot < 8; slot++ {
		if err := tx.Write(repro.Obj(5, slot), []byte(strings.Repeat("n", 100+int(slot)*10))); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	check, _ := bob.Begin()
	total := 0
	for slot := uint16(0); slot < 8; slot++ {
		v, err := check.Read(repro.Obj(5, slot))
		if err != nil {
			log.Fatal(err)
		}
		total += len(v)
	}
	check.Commit()
	fmt.Printf("\npage 5 now holds %d bytes across 8 objects — more than one\n", total)
	fmt.Println("fixed-slot page could carry; overflow forwarding did the rest.")
}
