// Package repro is a reproduction of "Fine-Grained Sharing in a Page
// Server OODBMS" (Carey, Franklin, Zaharioudakis; SIGMOD 1994): a
// data-shipping client-server object database supporting all five
// granularity protocols the paper studies — the basic page server (PS),
// the basic object server (OS), and the three hybrid page servers with
// object-level sharing (PS-OO, PS-OA, and the adaptive PS-AA the paper
// recommends), plus the write-token variant of the paper's Section 6.1
// (PS-WT) — and the discrete-event simulation study that reproduces the
// paper's evaluation.
//
// This root package is the public facade. It re-exports the identifier
// and protocol types, provides a convenience in-process Cluster around the
// live system (internal/live), and exposes the simulation entry points
// (internal/model, internal/workload, internal/experiments).
//
// Quick start:
//
//	cluster, _ := repro.NewCluster(dir, repro.ClusterOptions{Proto: repro.PSAA, Clients: 2})
//	defer cluster.Close()
//	tx, _ := cluster.Client(0).Begin()
//	tx.Write(repro.Obj(3, 7), []byte("hello"))
//	tx.Commit()
package repro

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Protocol selects a granularity alternative; see the paper's Section 3.
type Protocol = core.Protocol

// The five protocols, in the paper's presentation order.
const (
	PS   = core.PS   // page transfer, page locking, page callbacks
	OS   = core.OS   // object granularity throughout
	PSOO = core.PSOO // page transfer, object locking, object callbacks
	PSOA = core.PSOA // page transfer, object locking, adaptive callbacks
	PSAA = core.PSAA // page transfer, adaptive locking, adaptive callbacks
	PSWT = core.PSWT // write-token variant: object locks, one updater per page (Section 6.1)
)

// ObjID names an object by home page and slot.
type ObjID = core.ObjID

// PageID names a physical page.
type PageID = core.PageID

// Obj builds an ObjID.
func Obj(page PageID, slot uint16) ObjID { return ObjID{Page: page, Slot: slot} }

// ErrAborted is returned when a transaction lost a deadlock and must be
// retried.
var ErrAborted = live.ErrAborted

// ErrTimeout is returned when a request exceeds the configured
// RequestTimeout. A Commit returning ErrTimeout has UNKNOWN outcome: the
// server may or may not have committed before the deadline.
var ErrTimeout = live.ErrTimeout

// ErrDisconnected is returned for operations whose transaction was aborted
// locally because the connection was lost. As with ErrTimeout, a Commit
// already in flight at disconnect time has unknown outcome.
var ErrDisconnected = live.ErrDisconnected

// Server is the live page-server DBMS process.
type Server = live.Server

// Client is a live client workstation handle.
type Client = live.Client

// Txn is a live transaction.
type Txn = live.Txn

// ServerOptions configures a standalone live server.
type ServerOptions = live.ServerOptions

// ClientOptions configures a live client (cache size, request deadline,
// reconnect policy).
type ClientOptions = live.ClientOptions

// RetryPolicy shapes dial/reconnect backoff.
type RetryPolicy = live.RetryPolicy

// Conn is the client<->server transport interface.
type Conn = live.Conn

// MetricsRegistry is the process-wide metrics registry type (see
// internal/obs): atomic counters, gauges, and log-bucketed latency
// histograms with Prometheus text exposition.
type MetricsRegistry = obs.Registry

// Tracer is the structured protocol-event tracer (see internal/obs).
type Tracer = obs.Tracer

// Heat is the sharded heat/contention collector (see internal/obs): top-K
// access sketches over pages and objects plus a windowed false-sharing
// detector. Reach it via Server.Heat or ClusterOptions.Heat.
type Heat = obs.Heat

// NewMetricsRegistry returns an empty registry, e.g. to share between a
// server and its clients so one scrape covers both sides.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ServeAdmin starts the observability HTTP endpoint for srv on addr
// (/metrics, /statusz, /trace, /heatz, /spanz, /debug/pprof/*). Close the
// returned handle to stop it.
func ServeAdmin(srv *Server, addr string) (*live.AdminServer, error) {
	return live.ServeAdmin(srv, addr)
}

// OpenServer opens (creating and recovering as needed) a database
// directory and returns the server.
func OpenServer(dir string, opts ServerOptions) (*Server, error) {
	return live.OpenServer(dir, opts)
}

// Dial connects to a TCP live server and completes the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := live.Dial(addr)
	if err != nil {
		return nil, err
	}
	return live.Connect(conn, live.ClientOptions{})
}

// DialConn dials the raw transport without the client handshake — the
// building block for ClientOptions.Redial policies.
func DialConn(addr string) (Conn, error) { return live.Dial(addr) }

// DialOpts connects to a TCP live server with explicit client options,
// retrying the initial dial under opts.Retry. Set opts.Redial (e.g. to
// DialConn of the same address) to make the client transparently
// reconnect — with backoff and a cold cache — after transport failures.
func DialOpts(addr string, opts ClientOptions) (*Client, error) {
	conn, err := live.DialRetry(addr, opts.Retry)
	if err != nil {
		return nil, err
	}
	return live.Connect(conn, opts)
}

// ClusterOptions configures NewCluster.
type ClusterOptions struct {
	Proto       Protocol
	Clients     int // number of attached clients (default 1)
	PageSize    int // default 4096
	ObjsPerPage int // default 20
	NumPages    int // default 1250
	SyncWAL     bool
	// Shards is the number of page-hash engine shards (0: the default of
	// min(8, GOMAXPROCS), honoring OODB_SHARDS; 1 disables sharding). See
	// ServerOptions.Shards.
	Shards int
	// RecoveryJobs is the number of parallel WAL replay workers used during
	// startup recovery (0: min(shards, GOMAXPROCS), honoring
	// OODB_RECOVERY_JOBS; 1: serial replay). See ServerOptions.RecoveryJobs.
	RecoveryJobs int
	// VariableObjects enables size-changing updates (slotted pages with
	// overflow forwarding); requires Proto == OS.
	VariableObjects bool
	// CallbackTimeout deposes clients that leave a consistency callback
	// unanswered this long (0: wait forever). See ServerOptions.
	CallbackTimeout time.Duration
	// Metrics, when set, aggregates server and client metrics in one
	// registry (the server creates its own otherwise).
	Metrics *MetricsRegistry
	// Heat starts the server with the heat/contention collector enabled
	// (top-K hot pages and objects, false-sharing suspects; see
	// Server.Heat and the /heatz admin endpoint).
	Heat bool
	// Recluster enables online reclustering: spare pages are reserved at
	// store creation and a background planner migrates objects off
	// false-sharing suspect pages (implies Heat; see ServerOptions and
	// the /reclusterz admin endpoint).
	Recluster bool
	// ReclusterEvery is the recluster planner's polling period
	// (0: the server default). See ServerOptions.ReclusterEvery.
	ReclusterEvery time.Duration
	// BlackboxDir, when set, writes crash blackboxes (trace ring + heat
	// snapshot + commit spans + metrics as JSONL) into this directory on
	// a server panic or fail-stop. See ServerOptions.BlackboxDir.
	BlackboxDir string
	// Transport selects how Server.ListenAndServe owns TCP connections:
	// "goroutine" (default) or "reactor" (epoll event loops; Linux).
	// In-process clients attached via AttachClient use pipes either way;
	// the transport matters only when the cluster's server also listens.
	// See ServerOptions.Transport.
	Transport string
}

// Cluster is an in-process server with a set of attached clients —
// the workstation/server configuration of the paper without leaving the
// process. Use it for embedding, examples, and tests.
type Cluster struct {
	srv     *live.Server
	clients []*live.Client
	metrics *MetricsRegistry // shared registry passed to attached clients (may be nil)
}

// NewCluster opens a server in dir and attaches the requested clients via
// in-process transports.
func NewCluster(dir string, opts ClusterOptions) (*Cluster, error) {
	n := opts.Clients
	if n <= 0 {
		n = 1
	}
	srv, err := live.OpenServer(dir, live.ServerOptions{
		Proto: opts.Proto, PageSize: opts.PageSize, ObjsPerPage: opts.ObjsPerPage,
		NumPages: opts.NumPages, SyncWAL: opts.SyncWAL, Shards: opts.Shards,
		RecoveryJobs:    opts.RecoveryJobs,
		VariableObjects: opts.VariableObjects,
		CallbackTimeout: opts.CallbackTimeout,
		Metrics:         opts.Metrics,
		Heat:            opts.Heat,
		Recluster:       opts.Recluster,
		ReclusterEvery:  opts.ReclusterEvery,
		BlackboxDir:     opts.BlackboxDir,
		Transport:       opts.Transport,
	})
	if err != nil {
		return nil, err
	}
	cl := &Cluster{srv: srv, metrics: opts.Metrics}
	for i := 0; i < n; i++ {
		if _, err := cl.AttachClient(); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Server returns the underlying server (e.g. for Stats or Checkpoint).
func (c *Cluster) Server() *Server { return c.srv }

// Client returns the i-th attached client (0-based).
func (c *Cluster) Client(i int) *Client {
	if i < 0 || i >= len(c.clients) {
		panic(fmt.Sprintf("repro: client %d out of range [0,%d)", i, len(c.clients)))
	}
	return c.clients[i]
}

// NumClients returns the number of attached clients.
func (c *Cluster) NumClients() int { return len(c.clients) }

// AttachClient connects one more in-process client.
func (c *Cluster) AttachClient() (*Client, error) {
	cEnd, sEnd := live.Pipe()
	if _, err := c.srv.Attach(sEnd); err != nil {
		return nil, err
	}
	cli, err := live.Connect(cEnd, live.ClientOptions{Metrics: c.metrics})
	if err != nil {
		return nil, err
	}
	c.clients = append(c.clients, cli)
	return cli, nil
}

// Close shuts down clients then the server.
func (c *Cluster) Close() error {
	for _, cl := range c.clients {
		cl.Close()
	}
	return c.srv.Close()
}

// ---- Simulation facade ----

// Workload re-exports the simulation workload specification.
type Workload = workload.Spec

// Locality selects the paper's two transaction shapes.
type Locality = workload.Locality

// The two locality settings (both average 120 objects per transaction).
const (
	LowLocality  = workload.LowLocality  // 30 pages x 1-7 objects
	HighLocality = workload.HighLocality // 10 pages x 8-16 objects
)

// The paper's workload presets (Section 4.2 / Table 2).
var (
	HotColdWorkload            = workload.HotColdSpec
	UniformWorkload            = workload.UniformSpec
	HiConWorkload              = workload.HiConSpec
	PrivateWorkload            = workload.PrivateSpec
	InterleavedPrivateWorkload = workload.InterleavedPrivateSpec
)

// SimConfig is the simulation configuration (Table 1 parameters).
type SimConfig = model.Config

// SimResults is one simulation run's output.
type SimResults = model.Results

// DefaultSimConfig returns the paper's Table 1 settings for a protocol and
// workload.
func DefaultSimConfig(proto Protocol, w Workload) SimConfig {
	return model.DefaultConfig(proto, w)
}

// Simulate runs one simulation to completion.
func Simulate(cfg SimConfig) *SimResults { return model.Run(cfg) }
