package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/workload"
)

// The Benchmark*Fig* targets regenerate each paper figure in miniature:
// per iteration they run the figure's workload at a representative write
// probability for all five protocols and report per-protocol throughput as
// custom metrics (tps-<proto>). The full-length sweeps behind
// EXPERIMENTS.md are produced by `go run ./cmd/figures`.

const benchWriteProb = 0.15

func benchOpts() experiments.Opts {
	// Jobs 0 = GOMAXPROCS: protocol cells of the sweep run on the
	// parallel runner, which produces results identical to the serial
	// path for any worker count.
	return experiments.Opts{Seed: 7, Warmup: 2, Measure: 8, Batches: 4, Jobs: 0}
}

// runFigure executes one catalogue sweep at a single write probability and
// reports throughput metrics.
func runFigure(b *testing.B, id string) {
	b.Helper()
	s := experiments.Find(id)
	if s == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	s.WriteProbs = []float64{benchWriteProb}
	for i := 0; i < b.N; i++ {
		res, errs := s.RunParallel(benchOpts(), nil)
		if len(errs) > 0 {
			b.Fatalf("cell failures: %v", errs[0])
		}
		for _, p := range res.Protocols {
			v := res.Rows[0].Res[p].Throughput
			if s.Normalize {
				base := res.Rows[0].Res[core.PSAA].Throughput
				if base > 0 {
					v /= base
				}
			}
			b.ReportMetric(v, "tps-"+p.String())
		}
	}
}

func BenchmarkFig03HotColdLowLocality(b *testing.B)  { runFigure(b, "fig3") }
func BenchmarkFig04HotColdHighLocality(b *testing.B) { runFigure(b, "fig4") }

func BenchmarkFig05PageWriteProb(b *testing.B) {
	// Figure 5 is analytic; benchmark the computation over the full grid.
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for wp := 0.0; wp <= 0.5; wp += 0.001 {
			for _, l := range experiments.Fig5Localities {
				sum += experiments.PageWriteProb(wp, l)
			}
		}
		if sum < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkFig06UniformLowLocality(b *testing.B)  { runFigure(b, "fig6") }
func BenchmarkFig07UniformHighLocality(b *testing.B) { runFigure(b, "fig7") }
func BenchmarkFig08HiconLowLocality(b *testing.B)    { runFigure(b, "fig8") }
func BenchmarkFig09HiconHighLocality(b *testing.B)   { runFigure(b, "fig9") }
func BenchmarkFig10Private(b *testing.B)             { runFigure(b, "fig10") }
func BenchmarkFig11InterleavedPrivate(b *testing.B)  { runFigure(b, "fig11") }
func BenchmarkFig12ScaledHotCold(b *testing.B)       { runFigure(b, "fig12") }
func BenchmarkFig13ScaledUniform(b *testing.B)       { runFigure(b, "fig13") }
func BenchmarkFig14ScaledHicon(b *testing.B)         { runFigure(b, "fig14") }

func BenchmarkExtraLocalityOne(b *testing.B) { runFigure(b, "x-locality1") }
func BenchmarkExtraSlowNetwork(b *testing.B) { runFigure(b, "x-slownet") }
func BenchmarkExtraClustered(b *testing.B)   { runFigure(b, "x-clustered") }

// BenchmarkAblationWriteToken compares merging concurrent page updates
// (PS-OO) against the Section 6.1 write-token scheme (PS-WT) under extreme
// false sharing.
func BenchmarkAblationWriteToken(b *testing.B)        { runFigure(b, "x-wtoken") }
func BenchmarkAblationWriteTokenHotCold(b *testing.B) { runFigure(b, "x-wtoken-hotcold") }

func BenchmarkExtraClientScaling(b *testing.B) {
	sweeps := experiments.ClientScalingSweep(0.10, []int{1, 5, 10})
	for i := 0; i < b.N; i++ {
		for _, s := range sweeps {
			s.Protocols = []core.Protocol{core.PSAA}
			res, errs := s.RunParallel(benchOpts(), nil)
			if len(errs) > 0 {
				b.Fatalf("cell failures: %v", errs[0])
			}
			b.ReportMetric(res.Rows[0].Res[core.PSAA].Throughput, "tps-"+s.ID)
		}
	}
}

// BenchmarkTable1Defaults checks/benches the Table 1 configuration
// constructor (paper parameter encoding).
func BenchmarkTable1Defaults(b *testing.B) {
	w := workload.HotColdSpec(workload.LowLocality, 0.1)
	for i := 0; i < b.N; i++ {
		cfg := model.DefaultConfig(core.PSAA, w)
		if cfg.ServerMIPS != 30 || cfg.PageSize != 4096 || cfg.NumDisks != 2 {
			b.Fatal("Table 1 defaults corrupted")
		}
	}
}

// BenchmarkTable2Workloads benches transaction-string generation for every
// Table 2 workload preset.
func BenchmarkTable2Workloads(b *testing.B) {
	specs := []workload.Spec{
		workload.HotColdSpec(workload.LowLocality, 0.2),
		workload.UniformSpec(workload.HighLocality, 0.2),
		workload.HiConSpec(workload.LowLocality, 0.2),
		workload.PrivateSpec(workload.HighLocality, 0.2),
		workload.InterleavedPrivateSpec(0.2),
	}
	for _, s := range specs {
		s := s
		b.Run(s.Kind.String(), func(b *testing.B) {
			gen := workload.NewGenerator(s, s.Layout(), 1, newRand(1))
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				n += len(gen.NextTxn())
			}
			b.ReportMetric(float64(n)/float64(b.N), "objs/txn")
		})
	}
}

// ---- Component micro-benchmarks ----

func BenchmarkLockTableGrantRelease(b *testing.B) {
	lt := core.NewLockTab()
	for i := 0; i < b.N; i++ {
		t := core.TxnID(i + 1)
		for s := uint16(0); s < 8; s++ {
			lt.GrantObjX(t, 1, core.ObjID{Page: core.PageID(i % 64), Slot: s})
		}
		lt.ReleaseAll(t)
	}
}

func BenchmarkClientCacheInstallEvict(b *testing.B) {
	c := core.NewClientCache(false, 128)
	for i := 0; i < b.N; i++ {
		c.InstallPage(core.PageID(i%512), nil)
		if i%64 == 0 {
			c.TakeDropped()
		}
	}
}

// BenchmarkServerEngineReadPath measures the pure protocol engine's
// request handling (no simulation costs attached).
func BenchmarkServerEngineReadPath(b *testing.B) {
	layout := core.NewLayout(1024, 20)
	se := core.NewServerEngine(core.PSAA, layout)
	for i := 0; i < b.N; i++ {
		m := core.Msg{Kind: core.MReadReq, From: 1, Txn: core.TxnID(i + 1),
			Obj: core.ObjID{Page: core.PageID(i % 1024)}, Req: int64(i)}
		se.Handle(&m)
	}
}

// BenchmarkLiveCommit measures end-to-end live-system transactions over
// the in-process transport.
func BenchmarkLiveCommit(b *testing.B) {
	dir, err := os.MkdirTemp("", "oodb-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cluster, err := NewCluster(dir, ClusterOptions{
		Proto: PSAA, Clients: 1, NumPages: 256, ObjsPerPage: 8, PageSize: 512,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	cl := cluster.Client(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := cl.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Write(Obj(PageID(i%256), uint16(i%8)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
